package powerfail_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"powerfail"
)

// smallItems returns a fast catalog slice for campaign tests.
func smallItems(t *testing.T, figure string, scale float64) []powerfail.CatalogItem {
	t.Helper()
	items, err := powerfail.ItemsFor(figure, scale)
	if err != nil {
		t.Fatal(err)
	}
	return items
}

// encodeReports marshals every report so runs can be compared byte for
// byte (nil reports encode as "null").
func encodeReports(t *testing.T, out *powerfail.CampaignResult) []string {
	t.Helper()
	enc := make([]string, len(out.Results))
	for i, res := range out.Results {
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatalf("marshal report %d: %v", i, err)
		}
		enc[i] = string(b)
	}
	return enc
}

// TestCampaignParallelDeterminism: the acceptance criterion — the same
// (BaseSeed, items) produce byte-identical reports at parallelism 1 and 8.
func TestCampaignParallelDeterminism(t *testing.T) {
	items := smallItems(t, "fig5", 0.02)

	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
			powerfail.WithBaseSeed(42),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)

	if seq.Completed != len(items) || par.Completed != len(items) {
		t.Fatalf("completed %d/%d, want %d", seq.Completed, par.Completed, len(items))
	}
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqEnc[i], parEnc[i])
		}
	}
	for i, res := range par.Results {
		if res.Item.Label != items[i].Label {
			t.Fatalf("result %d out of item order: %q", i, res.Item.Label)
		}
	}
}

// TestArrayCampaignParallelDeterminism: the multi-device acceptance
// criterion — the "array" figure produces byte-identical CampaignResults
// at parallelism 1 and 8 (every member platform is rebuilt per item from
// the item seed, so scheduling never leaks into the reports).
func TestArrayCampaignParallelDeterminism(t *testing.T) {
	items := smallItems(t, "array", 0.02)
	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	if seq.Completed != len(items) || par.Completed != len(items) {
		t.Fatalf("completed %d/%d, want %d", seq.Completed, par.Completed, len(items))
	}
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	anyLoss := false
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("array item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqEnc[i], parEnc[i])
		}
		if seq.Results[i].Report.DataLosses() > 0 {
			anyLoss = true
		}
		if len(seq.Results[i].Report.Members) == 0 {
			t.Fatalf("array item %d (%s): no per-member attribution", i, items[i].Label)
		}
	}
	if !anyLoss {
		t.Fatal("no array point lost data — correlated faults not biting")
	}
}

// TestCampaignBaseSeedOverrides: WithBaseSeed reseeds items by index, so
// two base seeds give different reports and the same base seed repeats.
func TestCampaignBaseSeedOverrides(t *testing.T) {
	items := smallItems(t, "seqrand", 0.02)
	run := func(seed uint64) []string {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(2),
			powerfail.WithBaseSeed(seed),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return encodeReports(t, out)
	}
	a, b, c := run(7), run(7), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same base seed diverged at item %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different base seeds produced identical campaigns (suspicious)")
	}
	// Reseeding must not mutate the caller's items.
	if items[0].Opts.Seed != 700 {
		t.Fatalf("caller's item seed mutated to %d", items[0].Opts.Seed)
	}
}

// TestCampaignCancellation: a cancelled context returns promptly with
// partial results — every item present, unrun ones marked cancelled.
func TestCampaignCancellation(t *testing.T) {
	// Plenty of items so cancellation lands mid-campaign.
	items := smallItems(t, "window", 0.02)
	ctx, cancel := context.WithCancel(context.Background())

	var once sync.Once
	campaign := powerfail.NewCampaign(items,
		powerfail.WithParallelism(2),
		powerfail.WithProgress(func(powerfail.CatalogResult) {
			once.Do(cancel)
		}))

	start := time.Now()
	out, err := campaign.Run(ctx)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out.Results) != len(items) {
		t.Fatalf("results %d, want %d", len(out.Results), len(items))
	}
	if out.Cancelled == 0 {
		t.Fatal("no items recorded as cancelled")
	}
	if out.Completed+out.Failed+out.Cancelled != out.Items {
		t.Fatalf("totals do not add up: %+v", out)
	}
	for _, res := range out.Results {
		if res.Err == nil && res.Report == nil {
			t.Fatalf("%s: neither report nor error", res.Item.Label)
		}
	}
	// "Promptly": the remaining ~20 items would take far longer than one.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

// TestCampaignFailFast: the first item error cancels the rest and is
// returned from Run.
func TestCampaignFailFast(t *testing.T) {
	items := smallItems(t, "fig6", 0.01)
	items[0].Spec.Faults = -1 // fails validation instantly
	out, err := powerfail.NewCampaign(items,
		powerfail.WithFailFast(),
	).Run(context.Background())
	if err == nil {
		t.Fatal("fail-fast campaign returned nil error")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("fail-fast returned the cancellation, not the cause: %v", err)
	}
	if out.Results[0].Err == nil {
		t.Fatal("broken item carries no error")
	}
	if out.Failed != 1 {
		t.Fatalf("failed = %d, want 1", out.Failed)
	}
	if out.Cancelled != len(items)-1 {
		t.Fatalf("cancelled = %d, want %d", out.Cancelled, len(items)-1)
	}

	// Without fail-fast the same catalog keeps going.
	out, err = powerfail.NewCampaign(items).Run(context.Background())
	if err != nil {
		t.Fatalf("non-fail-fast campaign errored: %v", err)
	}
	if out.Completed != len(items)-1 || out.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want %d/1", out.Completed, out.Failed, len(items)-1)
	}
}

// TestCampaignAggregation: figure summaries add up to the per-item
// reports and carry a sane confidence interval.
func TestCampaignAggregation(t *testing.T) {
	items := smallItems(t, "fig5", 0.02)
	calls := 0
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(4),
		powerfail.WithProgress(func(powerfail.CatalogResult) { calls++ }),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(items) {
		t.Fatalf("progress calls = %d, want %d", calls, len(items))
	}
	if len(out.Figures) != 1 || out.Figures[0].Figure != "fig5" {
		t.Fatalf("figures: %+v", out.Figures)
	}
	s := out.Figures[0]
	var faults, data, fwa, ioerr int
	for _, res := range out.Results {
		faults += res.Report.Faults
		data += res.Report.Counters.DataFailures
		fwa += res.Report.Counters.FWA
		ioerr += res.Report.Counters.IOErrors
	}
	if s.Faults != faults || s.DataFailures != data || s.FWA != fwa || s.IOErrors != ioerr {
		t.Fatalf("summary %+v does not match report sums (%d,%d,%d,%d)", s, faults, data, fwa, ioerr)
	}
	if s.LossPerFault.N != len(items) || s.LossPerFault.CI95 < 0 {
		t.Fatalf("loss stat: %+v", s.LossPerFault)
	}
	if s.LossPerFault.Min > s.LossPerFault.Mean || s.LossPerFault.Mean > s.LossPerFault.Max {
		t.Fatalf("stat ordering: %+v", s.LossPerFault)
	}
	if out.SimTime <= 0 {
		t.Fatal("no simulated time accumulated")
	}
}

// TestCampaignJSON: the campaign result marshals into the machine-readable
// document the -json flag emits.
func TestCampaignJSON(t *testing.T) {
	items := smallItems(t, "seqrand", 0.02)
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(2),
		powerfail.WithBaseSeed(3),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Figure string          `json:"figure"`
			Label  string          `json:"label"`
			Seed   uint64          `json:"seed"`
			Report json.RawMessage `json:"report"`
			Error  string          `json:"error"`
		} `json:"results"`
		Figures []struct {
			Figure       string `json:"figure"`
			LossPerFault struct {
				N    int     `json:"n"`
				Mean float64 `json:"mean"`
			} `json:"loss_per_fault"`
		} `json:"figures"`
		Items     int `json:"items"`
		Completed int `json:"completed"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Items != len(items) || doc.Completed != len(items) {
		t.Fatalf("items=%d completed=%d, want %d", doc.Items, doc.Completed, len(items))
	}
	for i, res := range doc.Results {
		if res.Figure != "seqrand" || res.Label == "" || len(res.Report) == 0 || res.Error != "" {
			t.Fatalf("result %d: %+v", i, res)
		}
		if res.Seed == 0 {
			t.Fatalf("result %d: base-seed derivation missing from JSON", i)
		}
		var rep struct {
			Name     string `json:"name"`
			Faults   int    `json:"faults"`
			Counters struct {
				DataFailures *int `json:"data_failures"`
			} `json:"counters"`
			Workload struct{} `json:"-"`
		}
		if err := json.Unmarshal(res.Report, &rep); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if rep.Name == "" || rep.Faults == 0 || rep.Counters.DataFailures == nil {
			t.Fatalf("report %d missing fields: %s", i, res.Report)
		}
	}
	if len(doc.Figures) != 1 || doc.Figures[0].LossPerFault.N != len(items) {
		t.Fatalf("figures: %+v", doc.Figures)
	}
}

// TestRunContextCompat: RunContext surfaces cancellation, Run still works
// without one.
func TestRunContextCompat(t *testing.T) {
	prof := powerfail.ProfileA()
	prof.CapacityGB = 8
	w := powerfail.DefaultWorkload()
	w.WSSBytes = 1 << 30
	spec := powerfail.Experiment{
		Name: "ctx", Workload: w, Faults: 3, RequestsPerFault: 8,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := powerfail.RunContext(ctx, powerfail.Options{Seed: 1, Profile: prof}, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx: %v", err)
	}
	rep, err := powerfail.RunContext(context.Background(), powerfail.Options{Seed: 1, Profile: prof}, spec)
	if err != nil || rep.Faults != 3 {
		t.Fatalf("RunContext: rep=%+v err=%v", rep, err)
	}
}

// TestCacheCampaignParallelDeterminism: the "cache" figure is
// byte-deterministic at parallelism 1 vs 8. This pins the crash-recovery
// path of the write-back cache, whose free-slot reclamation once walked a
// map and made post-fault slot allocation (and with it whole reports)
// depend on iteration order.
func TestCacheCampaignParallelDeterminism(t *testing.T) {
	items := smallItems(t, "cache", 0.02)
	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	if seq.Completed != len(items) || par.Completed != len(items) {
		t.Fatalf("completed %d/%d, want %d", seq.Completed, par.Completed, len(items))
	}
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("cache item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqEnc[i], parEnc[i])
		}
	}
}
