package powerfail_test

import (
	"context"
	"strings"
	"testing"

	"powerfail"
)

// TestTxnCampaignParallelDeterminism: the application-layer acceptance
// criterion — the "txn" figure produces byte-identical reports at
// parallelism 1 and 8. The engine, the oracle and every device model run
// single-threaded per item from the item seed, so scheduling can never
// leak into a verdict.
func TestTxnCampaignParallelDeterminism(t *testing.T) {
	items := smallItems(t, "txn", 0.02)
	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	if seq.Completed != len(items) || par.Completed != len(items) {
		t.Fatalf("completed %d/%d, want %d", seq.Completed, par.Completed, len(items))
	}
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("txn item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqEnc[i], parEnc[i])
		}
		if seq.Results[i].Report.TxnStats == nil {
			t.Fatalf("txn item %d (%s): no TxnStats in report", i, items[i].Label)
		}
	}
}

// TestTxnFigureAcceptancePair: the catalog's own flush-per-commit points
// lose no acknowledged transaction on any topology, while the no-flush
// SSD points lose some — the barrier is the only difference.
func TestTxnFigureAcceptancePair(t *testing.T) {
	items := smallItems(t, "txn", 0.02)
	var flushItems, noflushSSD []powerfail.CatalogItem
	for _, it := range items {
		switch {
		case strings.HasPrefix(it.Label, "flush/"):
			flushItems = append(flushItems, it)
		case strings.HasPrefix(it.Label, "noflush/ssd"):
			noflushSSD = append(noflushSSD, it)
		}
	}
	if len(flushItems) == 0 || len(noflushSSD) == 0 {
		t.Fatalf("catalog shape changed: %d flush, %d noflush/ssd items", len(flushItems), len(noflushSSD))
	}

	out, err := powerfail.NewCampaign(append(flushItems, noflushSSD...),
		powerfail.WithParallelism(4)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var noflushLosses int64
	for _, res := range out.Results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Item.Label, res.Err)
		}
		s := res.Report.TxnStats
		if s == nil {
			t.Fatalf("%s: no TxnStats", res.Item.Label)
		}
		if strings.HasPrefix(res.Item.Label, "flush/") {
			if s.Losses() != 0 {
				t.Fatalf("%s: flush-per-commit lost %d transactions: %s", res.Item.Label, s.Losses(), s)
			}
		} else {
			noflushLosses += s.LostCommits
			// Every oracle loss must be witnessed by device-level loss in
			// the same report (the emergence criterion).
			if s.Losses() > 0 && res.Report.DataLosses() == 0 &&
				(res.Report.DeviceStats == nil || res.Report.DeviceStats.DirtyPagesLost == 0) {
				t.Fatalf("%s: %d oracle losses without device-level corroboration", res.Item.Label, s.Losses())
			}
		}
	}
	if noflushLosses == 0 {
		t.Fatal("no-flush on the volatile-cache SSD lost no commits across the figure")
	}
}

// TestFiguresRegistry: the -list discovery path — every registered figure
// has a title and a non-empty item series, ItemsFor agrees with the
// registry, and FigureTitle resolves known ids.
func TestFiguresRegistry(t *testing.T) {
	figs := powerfail.Figures(0.01)
	if len(figs) != len(catalogFigures) {
		t.Fatalf("registry lists %d figures, catalogFigures has %d", len(figs), len(catalogFigures))
	}
	for _, fi := range figs {
		if fi.Title == "" || fi.Title == fi.ID {
			t.Errorf("%s: no display title", fi.ID)
		}
		if fi.Items == 0 {
			t.Errorf("%s: empty series in registry", fi.ID)
		}
		items, err := powerfail.ItemsFor(fi.ID, 0.01)
		if err != nil {
			t.Errorf("%s: %v", fi.ID, err)
			continue
		}
		if len(items) != fi.Items {
			t.Errorf("%s: registry says %d items, ItemsFor returns %d", fi.ID, fi.Items, len(items))
		}
		if powerfail.FigureTitle(fi.ID) != fi.Title {
			t.Errorf("%s: FigureTitle mismatch", fi.ID)
		}
	}
	if got := powerfail.FigureTitle("nope"); got != "nope" {
		t.Errorf("unknown id title = %q", got)
	}
	// The unknown-figure error names the registered ids (discovery on typo).
	_, err := powerfail.ItemsFor("fig77", 1)
	if err == nil || !strings.Contains(err.Error(), "txn") || !strings.Contains(err.Error(), "fig7") {
		t.Errorf("typo error does not enumerate figures: %v", err)
	}
}
