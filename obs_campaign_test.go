package powerfail_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"powerfail"
)

// obsItems returns the first n items of a figure with the observability
// layer enabled on each.
func obsItems(t *testing.T, figure string, scale float64, n int) []powerfail.CatalogItem {
	t.Helper()
	items := smallItems(t, figure, scale)
	if n > 0 && len(items) > n {
		items = items[:n]
	}
	cfg := powerfail.DefaultObsConfig()
	for i := range items {
		items[i].Opts.Obs = &cfg
	}
	return items
}

// dumpSummaries renders every per-item obs summary as its deterministic
// text dump (nil summaries render empty).
func dumpSummaries(t *testing.T, out *powerfail.CampaignResult) []string {
	t.Helper()
	dumps := make([]string, len(out.Results))
	for i, res := range out.Results {
		if res.Report == nil || res.Report.Obs == nil {
			continue
		}
		var b strings.Builder
		if err := res.Report.Obs.Dump(&b); err != nil {
			t.Fatal(err)
		}
		dumps[i] = b.String()
	}
	return dumps
}

// TestCampaignObsParallelDeterminism is the acceptance criterion for the
// telemetry itself: with observability enabled, the same items produce
// byte-identical metric dumps and identical trace-event streams at
// parallelism 1 and 8.
func TestCampaignObsParallelDeterminism(t *testing.T) {
	items := obsItems(t, "fleet", 0.02, 4)
	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)

	seqDump, parDump := dumpSummaries(t, seq), dumpSummaries(t, par)
	for i := range seqDump {
		if seqDump[i] == "" {
			t.Fatalf("item %d (%s): no obs summary", i, items[i].Label)
		}
		if seqDump[i] != parDump[i] {
			t.Errorf("item %d (%s) metric dump diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqDump[i], parDump[i])
		}
		a, b := seq.Results[i].Report.ObsTrace, par.Results[i].Report.ObsTrace
		if !reflect.DeepEqual(a, b) {
			t.Errorf("item %d (%s) trace diverged: %d vs %d events",
				i, items[i].Label, len(a), len(b))
		}
	}
}

// TestCampaignObsEquivalence: enabling observability changes no campaign
// report, across figures that exercise the single-SSD, array and fleet
// paths.
func TestCampaignObsEquivalence(t *testing.T) {
	for _, fig := range []string{"seqrand", "array", "fleet"} {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			plain := smallItems(t, fig, 0.02)
			if len(plain) > 2 {
				plain = plain[:2]
			}
			instrumented := obsItems(t, fig, 0.02, 2)

			run := func(items []powerfail.CatalogItem) *powerfail.CampaignResult {
				out, err := powerfail.NewCampaign(items,
					powerfail.WithParallelism(2)).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			off := run(plain)
			on := run(instrumented)
			for i := range off.Results {
				offRep := off.Results[i].Report
				onRep := *on.Results[i].Report
				if onRep.Obs == nil {
					t.Fatalf("item %d: no obs summary on instrumented run", i)
				}
				onRep.Obs = nil // the only JSON-visible addition
				offJSON, err := json.Marshal(offRep)
				if err != nil {
					t.Fatal(err)
				}
				onJSON, err := json.Marshal(&onRep)
				if err != nil {
					t.Fatal(err)
				}
				if string(offJSON) != string(onJSON) {
					t.Errorf("item %d (%s): observability changed the report:\n%s\n%s",
						i, off.Results[i].Item.Label, offJSON, onJSON)
				}
			}
		})
	}
}

// TestFigureObsMerge: the per-figure summary merges the per-item
// observability summaries exactly — counters add and histogram counts sum
// bucket-for-bucket.
func TestFigureObsMerge(t *testing.T) {
	items := obsItems(t, "fleet", 0.02, 4)
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 1 {
		t.Fatalf("figures = %d, want 1", len(out.Figures))
	}
	merged := out.Figures[0].Obs
	if merged == nil {
		t.Fatal("figure summary carries no merged obs")
	}

	parts := make([]*powerfail.ObsSummary, 0, len(out.Results))
	for _, res := range out.Results {
		parts = append(parts, res.Report.Obs)
	}
	want := powerfail.MergeObsSummaries(parts)
	if !reflect.DeepEqual(merged, want) {
		t.Error("figure obs summary != MergeObsSummaries of the item summaries")
	}

	// Counters add across items.
	var cuts int64
	for _, res := range out.Results {
		cuts += res.Report.Obs.Counter("power/cuts")
	}
	if got := merged.Counter("power/cuts"); got != cuts {
		t.Errorf("merged power/cuts = %d, want %d", got, cuts)
	}
	// Histogram counts sum, and quantiles stay within the merged extremes.
	var windows uint64
	for _, res := range out.Results {
		windows += res.Report.Obs.Histogram("fleet/rebuild_window_ns").Count
	}
	h := merged.Histogram("fleet/rebuild_window_ns")
	if h.Count != windows {
		t.Errorf("merged rebuild windows = %d, want %d", h.Count, windows)
	}
	if h.Count > 0 && (h.P50 < h.Min || h.P99 > h.Max) {
		t.Errorf("merged quantiles out of range: %+v", h)
	}

	// Events totals propagate to the campaign.
	var events uint64
	for _, res := range out.Results {
		events += res.Report.Events
	}
	if out.Events != events || out.Events == 0 {
		t.Errorf("campaign events = %d, want %d (nonzero)", out.Events, events)
	}
}
