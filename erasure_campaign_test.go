package powerfail_test

import (
	"context"
	"strings"
	"testing"

	"powerfail"
)

// runErasureFigure executes the erasure catalog at a small scale and
// fails on any item error.
func runErasureFigure(t *testing.T, parallelism int) *powerfail.CampaignResult {
	t.Helper()
	items := smallItems(t, "erasure", 0.02)
	out, err := powerfail.NewCampaign(items,
		powerfail.WithParallelism(parallelism),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	if out.Completed != len(items) {
		t.Fatalf("completed %d, want %d", out.Completed, len(items))
	}
	return out
}

// TestErasureCampaignParallelDeterminism: the "erasure" figure produces
// byte-identical reports at parallelism 1 and 8 — the coded RMW and
// reconstruction paths introduce no scheduling nondeterminism.
func TestErasureCampaignParallelDeterminism(t *testing.T) {
	seq := runErasureFigure(t, 1)
	par := runErasureFigure(t, 8)
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("erasure item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, seq.Results[i].Item.Label, seqEnc[i], parEnc[i])
		}
	}
}

// TestErasureFigureCoverage: every advertised point ran on the geometry
// its label names, exercised the parity RMW path, and the mixed points
// really carry the QLC straggler as their last member.
func TestErasureFigureCoverage(t *testing.T) {
	out := runErasureFigure(t, 4)
	wantMembers := map[string]int{"raid5": 5, "raid6": 6, "rs8+3": 11}
	codesSeen := map[string]bool{}
	mixesSeen := map[string]bool{}
	cutsSeen := map[string]bool{}
	for _, res := range out.Results {
		parts := strings.Split(res.Item.Label, "/")
		if len(parts) != 3 {
			t.Fatalf("label shape changed: %q", res.Item.Label)
		}
		code, mix, cut := parts[0], parts[1], parts[2]
		codesSeen[code], mixesSeen[mix], cutsSeen[cut] = true, true, true

		r := res.Report
		if r.ArrayStats == nil {
			t.Fatalf("%s: report carries no array stats", res.Item.Label)
		}
		if r.ArrayStats.ParityRMWs == 0 {
			t.Errorf("%s: no parity RMW cycles", res.Item.Label)
		}
		if got, want := len(r.Members), wantMembers[code]; got != want {
			t.Errorf("%s: %d member reports, want %d", res.Item.Label, got, want)
		}
		last := r.Members[len(r.Members)-1]
		if mix == "mixed" && last.Name != "Q" {
			t.Errorf("%s: last member is %q, want the QLC straggler Q", res.Item.Label, last.Name)
		}
		if mix == "uniform" && last.Name != "A" {
			t.Errorf("%s: last member is %q, want A", res.Item.Label, last.Name)
		}
	}
	for _, want := range []string{"raid5", "raid6", "rs8+3"} {
		if !codesSeen[want] {
			t.Errorf("figure covers no %q code points", want)
		}
	}
	for _, want := range []string{"uniform", "mixed"} {
		if !mixesSeen[want] {
			t.Errorf("figure covers no %q mix points", want)
		}
	}
	for _, want := range []string{"soft", "hard"} {
		if !cutsSeen[want] {
			t.Errorf("figure covers no %q cut points", want)
		}
	}
}

// TestErasureWeakestMember: the heterogeneous acceptance criterion — in a
// mixed RAID-6 array the QLC straggler's bigger, slower volatile cache
// concentrates the damage: it loses more dirty pages than its drive-A
// siblings average, and its attributed failures are at least their
// average.
func TestErasureWeakestMember(t *testing.T) {
	member := powerfail.ProfileA()
	member.CapacityGB = 8
	weak := powerfail.ProfileQ()
	weak.CapacityGB = 8
	cfg := powerfail.MixedRAIDConfig(powerfail.RAID6,
		member, member, member, member, member, weak)

	rep, err := powerfail.Run(
		powerfail.Options{Seed: 21, Topology: powerfail.ArrayTopology(cfg)},
		powerfail.Experiment{
			Name: "erasure-weakest",
			Workload: powerfail.Workload{
				Name:     "erasure-writes",
				WSSBytes: 2 << 30,
				MinSize:  4 << 10,
				MaxSize:  64 << 10,
			},
			Faults:           20,
			RequestsPerFault: 12,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 6 {
		t.Fatalf("member reports: %d, want 6", len(rep.Members))
	}
	q := rep.Members[5]
	if q.Name != "Q" {
		t.Fatalf("last member is %q, want Q", q.Name)
	}
	var sibDirty int64
	var sibData int
	for _, m := range rep.Members[:5] {
		sibDirty += m.DirtyPagesLost
		sibData += m.DataFailures
	}
	if q.DirtyPagesLost*5 <= sibDirty {
		t.Errorf("weak member lost %d dirty pages, not above the sibling mean %d",
			q.DirtyPagesLost, sibDirty/5)
	}
	if q.DataFailures*5 < sibData {
		t.Errorf("weak member's %d attributed data failures below the sibling mean %d",
			q.DataFailures, sibData/5)
	}
}
