package powerfail_test

import (
	"context"
	"strings"
	"testing"

	"powerfail"
)

// TestBundledTracesParse: the checked-in fixtures parse, cover both
// accepted CSV formats, and carry enough write traffic to exercise the
// loss taxonomy.
func TestBundledTracesParse(t *testing.T) {
	names := powerfail.BundledTraceNames()
	if len(names) < 2 {
		t.Fatalf("bundled traces: %v", names)
	}
	for _, name := range names {
		tr, err := powerfail.BundledTrace(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Records) == 0 || tr.Writes() == 0 {
			t.Fatalf("%s: %d records, %d writes", name, len(tr.Records), tr.Writes())
		}
		if tr.Duration() <= 0 {
			t.Fatalf("%s: no arrival spread", name)
		}
	}
	if _, err := powerfail.BundledTrace("nope"); err == nil ||
		!strings.Contains(err.Error(), names[0]) {
		t.Fatalf("unknown-trace error does not enumerate fixtures: %v", err)
	}
}

// TestTraceCampaignParallelDeterminism: the tentpole acceptance criterion
// — the same trace file and seeds produce byte-identical reports at
// parallelism 1 and 8, and every report records the trace source with its
// replay coverage.
func TestTraceCampaignParallelDeterminism(t *testing.T) {
	items := smallItems(t, "trace", 0.02)
	run := func(parallelism int) *powerfail.CampaignResult {
		out, err := powerfail.NewCampaign(items,
			powerfail.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	if seq.Completed != len(items) || par.Completed != len(items) {
		t.Fatalf("completed %d/%d, want %d", seq.Completed, par.Completed, len(items))
	}
	seqEnc, parEnc := encodeReports(t, seq), encodeReports(t, par)
	anyLoss := false
	for i := range seqEnc {
		if seqEnc[i] != parEnc[i] {
			t.Fatalf("trace item %d (%s) diverged between parallelism 1 and 8:\n%s\n%s",
				i, items[i].Label, seqEnc[i], parEnc[i])
		}
		rep := seq.Results[i].Report
		if rep.Source != "trace" || rep.TraceStats == nil {
			t.Fatalf("trace item %d (%s): source=%q stats=%+v",
				i, items[i].Label, rep.Source, rep.TraceStats)
		}
		if rep.TraceStats.Replayed == 0 || rep.TraceStats.Coverage <= 0 {
			t.Fatalf("trace item %d (%s): nothing replayed: %+v",
				i, items[i].Label, rep.TraceStats)
		}
		if rep.DataLosses() > 0 {
			anyLoss = true
		}
	}
	if !anyLoss {
		t.Fatal("no trace point lost data — replay not reaching the volatile paths")
	}
}

// TestTraceFigureContrast: the replayed traffic reproduces the paper's
// topology contrast — the write-through HDD never loses acknowledged
// requests while the volatile-cache SSD does, under the very same trace.
func TestTraceFigureContrast(t *testing.T) {
	items := smallItems(t, "trace", 0.02)
	var picked []powerfail.CatalogItem
	for _, it := range items {
		if strings.Contains(it.Label, "msr-web") {
			picked = append(picked, it)
		}
	}
	if len(picked) == 0 {
		t.Fatal("catalog shape changed: no msr-web items")
	}
	out, err := powerfail.NewCampaign(picked, powerfail.WithParallelism(4)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var ssdLosses int
	for _, res := range out.Results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Item.Label, res.Err)
		}
		switch {
		case strings.Contains(res.Item.Label, "/hdd/"):
			if res.Report.DataLosses() != 0 {
				t.Fatalf("%s: write-through HDD lost %d acknowledged requests",
					res.Item.Label, res.Report.DataLosses())
			}
		case strings.Contains(res.Item.Label, "/ssd/"):
			ssdLosses += res.Report.DataLosses()
		}
	}
	if ssdLosses == 0 {
		t.Fatal("trace replay on the volatile-cache SSD lost nothing")
	}
}
